package lsr

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/protocol/rpproto"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

func TestNoiselessMatchesOracle(t *testing.T) {
	// With zero measurement noise the converged link-state estimates must
	// equal the omniscient oracle's, pair by pair.
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(4))
	oracle := route.Build(net)
	lsrRt, st := Converge(net, Config{Noise: 0}, rng.New(5))
	if st.Messages == 0 || st.ConvergenceMs <= 0 || st.LSAs != net.NumNodes() {
		t.Fatalf("degenerate stats %+v", st)
	}
	hosts := append([]graph.NodeID{net.Source}, net.Clients...)
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			o := oracle.OneWayDelay(a, b)
			l := lsrRt.OneWayDelay(a, b)
			if math.Abs(o-l) > 1e-9 {
				t.Fatalf("delay %d→%d: oracle %v lsr %v", a, b, o, l)
			}
			// Summation order differs between the two Dijkstra
			// directions, so compare with a float tolerance.
			if math.Abs(oracle.RTT(a, b)-lsrRt.RTT(a, b)) > 1e-9 {
				t.Fatalf("rtt mismatch %d↔%d", a, b)
			}
		}
	}
}

func TestNextHopWalksConverge(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(60), rng.New(7))
	rt, _ := Converge(net, Config{Noise: 0.3}, rng.New(8))
	for _, c := range net.Clients {
		// Walk from every client to the source under noisy routing.
		cur := c
		steps := 0
		for cur != net.Source {
			next, link := rt.NextHop(cur, net.Source)
			if next == graph.None || link == graph.NoEdge {
				t.Fatalf("dead end at %d toward source", cur)
			}
			cur = next
			steps++
			if steps > net.NumNodes() {
				t.Fatal("routing loop under noise")
			}
		}
		// Path/Hops agree with the walk.
		if h := rt.Hops(c, net.Source); h != steps {
			t.Fatalf("Hops %d != walked %d", h, steps)
		}
	}
}

func TestNoiseBoundsEstimates(t *testing.T) {
	// Each directed link cost is within ±noise of truth, so any path
	// estimate is within ±noise of some true path cost, and in particular
	// within ±noise of the oracle's optimum from below.
	const noise = 0.2
	net := topology.MustGenerate(topology.DefaultConfig(50), rng.New(9))
	oracle := route.Build(net)
	rt, _ := Converge(net, Config{Noise: noise}, rng.New(10))
	for _, c := range net.Clients {
		est := rt.OneWayDelay(c, net.Source)
		truth := oracle.OneWayDelay(c, net.Source)
		if est < truth*(1-noise)-1e-9 {
			t.Fatalf("estimate %v below lower bound %v", est, truth*(1-noise))
		}
		// The estimated-optimal path's estimated cost can exceed the true
		// optimum by at most (1+noise)/(1−noise) in the worst case.
		if est > truth*(1+noise)/(1-noise)+1e-9 {
			t.Fatalf("estimate %v above bound for truth %v", est, truth)
		}
	}
}

func TestAsymmetricCostsUnderNoise(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(40), rng.New(11))
	rt, _ := Converge(net, Config{Noise: 0.3}, rng.New(12))
	asym := false
	for _, c := range net.Clients {
		if rt.OneWayDelay(c, net.Source) != rt.OneWayDelay(net.Source, c) {
			asym = true
			break
		}
	}
	if !asym {
		t.Fatal("independent endpoint measurements produced fully symmetric estimates")
	}
}

func TestFloodingCostScalesWithLinks(t *testing.T) {
	// Flooding sends each of the N LSAs at most twice per link (once per
	// direction) plus the originations.
	net := topology.MustGenerate(topology.DefaultConfig(50), rng.New(13))
	_, st := Converge(net, Config{}, rng.New(14))
	n := int64(net.NumNodes())
	links := int64(net.NumLinks())
	upper := n * 2 * links
	if st.Messages > upper {
		t.Fatalf("flood messages %d exceed bound %d", st.Messages, upper)
	}
	if st.Messages < n*links/4 {
		t.Fatalf("flood messages %d implausibly low", st.Messages)
	}
}

func TestConvergeDeterministic(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(40), rng.New(15))
	a, sa := Converge(net, Config{Noise: 0.2}, rng.New(16))
	b, sb := Converge(net, Config{Noise: 0.2}, rng.New(16))
	if *sa != *sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	for _, c := range net.Clients {
		if a.OneWayDelay(c, net.Source) != b.OneWayDelay(c, net.Source) {
			t.Fatal("estimates diverged under identical seeds")
		}
	}
}

func TestSessionRunsOverLinkStateRouting(t *testing.T) {
	// End to end: RP over noisy link-state routing still recovers every
	// loss (estimates are wrong but consistent; retries absorb the rest).
	net, err := topology.Standard(60, 0.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := Converge(net, Config{Noise: 0.25}, rng.New(18))
	e := rpproto.New(rpproto.DefaultOptions())
	s, err := protocol.NewSessionWithRouter(net, e,
		protocol.Config{Packets: 40, Interval: 40}, 19, rt)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Unrecovered != 0 || res.Stats.Losses == 0 {
		t.Fatalf("LSR-backed run failed: %+v complete=%v", res.Stats, res.Complete)
	}
}

func BenchmarkConverge200(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(200), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Converge(net, Config{}, rng.New(2))
	}
}

func TestPathAndPrepareEdgeCases(t *testing.T) {
	net, err := topology.Standard(30, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := Converge(net, Config{}, rng.New(22))
	c := net.Clients[0]
	// Path to self.
	p := rt.Path(c, c)
	if len(p) != 1 || p[0] != c {
		t.Fatalf("self path %v", p)
	}
	if rt.Hops(c, c) != 0 {
		t.Fatal("self hops not 0")
	}
	// Prepare is idempotent.
	rt.Prepare(c)
	rt.Prepare(c)
	// NextHop at destination.
	if n, e := rt.NextHop(c, c); n != graph.None || e != graph.NoEdge {
		t.Fatal("NextHop(v,v) wrong")
	}
	// Path symmetry in hop count under zero noise.
	s := net.Source
	if rt.Hops(c, s) != rt.Hops(s, c) {
		t.Fatal("asymmetric hop counts at zero noise")
	}
}
