// Package lsr implements a distributed link-state routing substrate in the
// style of OSPF, which §3.1 of the paper names as the source of its one-way
// delay estimates ("if the routing algorithm used is OSPF and the network
// uses link-delay as link cost, then the routing table will give an
// estimate of one-way delay").
//
// Unlike route.Tables — the omniscient oracle that reads true link delays —
// lsr runs the actual protocol machinery over the discrete-event engine:
//
//  1. every node measures the cost of its incident links by timing a HELLO
//     exchange; measurements carry configurable relative noise, and the two
//     endpoints of a link measure independently (so advertised costs are
//     asymmetric, as in real deployments);
//  2. every node originates a link-state advertisement (LSA) describing its
//     incident links and floods it; receivers store-and-forward LSAs they
//     have not seen (sequence-number dedup), paying real per-link delays;
//  3. once flooding quiesces, every node holds the same link-state database
//     and computes consistent shortest paths over the advertised directed
//     costs.
//
// The resulting Routing implements route.Router, so the planner and the
// protocol engines can run on estimated state — the substrate behind the
// estimation-noise robustness experiments (BenchmarkEstimationNoise).
package lsr

import (
	"fmt"
	"math"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/sim"
	"rmcast/internal/topology"
)

// Config parameterises the protocol run.
type Config struct {
	// Noise is the relative amplitude of HELLO measurement error: each
	// directed link cost is Delay·(1 + Noise·U[−1,1)), floored at a small
	// positive epsilon. Zero reproduces the oracle's metric exactly.
	Noise float64
}

// Stats reports the cost of convergence.
type Stats struct {
	// LSAs is the number of distinct advertisements originated.
	LSAs int
	// Messages is the number of LSA transmissions (store-and-forward
	// copies), and Hops the link crossings they consumed (equal here:
	// each transmission crosses exactly one link).
	Messages int64
	// ConvergenceMs is the simulated time until flooding quiesced.
	ConvergenceMs float64
}

// Routing is the converged link-state routing state. It implements
// route.Router over the advertised (noisy, asymmetric) costs.
type Routing struct {
	topo *topology.Network
	// cost[linkID][0] is the A→B advertised cost; [1] is B→A.
	cost [][2]float64
	// per-destination reverse shortest-path state, built lazily.
	dist    map[graph.NodeID][]float64
	nextHop map[graph.NodeID][]graph.NodeID
	nextVia map[graph.NodeID][]graph.EdgeID
}

// Converge runs measurement and flooding over a fresh event engine and
// returns the converged routing state. It panics only on internal
// inconsistencies; disconnected topologies surface as unreachable routes.
func Converge(topo *topology.Network, cfg Config, r *rng.Rand) (*Routing, *Stats) {
	n := topo.NumNodes()
	eng := sim.NewEngine()
	st := &Stats{LSAs: n}

	// 1. HELLO measurement: each endpoint measures its own outgoing cost.
	cost := make([][2]float64, topo.NumLinks())
	measure := func(true_ float64) float64 {
		c := true_ * (1 + cfg.Noise*r.Uniform(-1, 1))
		if c < 1e-6 {
			c = 1e-6
		}
		return c
	}
	for id := range cost {
		d := topo.Delay[id]
		cost[id][0] = measure(d) // A→B, measured by A
		cost[id][1] = measure(d) // B→A, measured by B
	}

	// 2. Flood each node's LSA (its incident directed costs — the cost
	// array above is exactly the union of all LSA payloads) with
	// sequence-number dedup; `seen[node][origin]` marks receipt. A single
	// origination round suffices for a static topology.
	seen := make([][]bool, n)
	for i := range seen {
		seen[i] = make([]bool, n)
	}
	var deliver func(node graph.NodeID, origin graph.NodeID, via graph.EdgeID)
	forward := func(node graph.NodeID, origin graph.NodeID, except graph.EdgeID) {
		for _, h := range topo.G.Neighbors(node) {
			if h.Edge == except {
				continue
			}
			st.Messages++
			peer, link := h.Peer, h.Edge
			eng.After(topo.Delay[link], func() { deliver(peer, origin, link) })
		}
	}
	deliver = func(node graph.NodeID, origin graph.NodeID, via graph.EdgeID) {
		if seen[node][origin] {
			return
		}
		seen[node][origin] = true
		forward(node, origin, via)
	}
	for v := 0; v < n; v++ {
		seen[v][v] = true
		forward(graph.NodeID(v), graph.NodeID(v), graph.NoEdge)
	}
	eng.Run(0)
	st.ConvergenceMs = eng.Now()

	// Verify full dissemination within each connected component: every
	// node must know every origin it can reach.
	comp, _ := graph.Components(topo.G)
	for v := 0; v < n; v++ {
		for o := 0; o < n; o++ {
			if comp[v] == comp[o] && !seen[v][o] {
				panic(fmt.Sprintf("lsr: node %d missed LSA of %d after convergence", v, o))
			}
		}
	}

	return &Routing{
		topo:    topo,
		cost:    cost,
		dist:    make(map[graph.NodeID][]float64),
		nextHop: make(map[graph.NodeID][]graph.NodeID),
		nextVia: make(map[graph.NodeID][]graph.EdgeID),
	}, st
}

// directedCost returns the advertised cost of traversing link id from node
// `from` toward its opposite endpoint.
func (rt *Routing) directedCost(id graph.EdgeID, from graph.NodeID) float64 {
	e := rt.topo.G.Edge(id)
	if e.A == from {
		return rt.cost[id][0]
	}
	return rt.cost[id][1]
}

// Prepare computes the reverse shortest-path tree toward destination d over
// the advertised directed costs: dist[v] is v's estimated cost to reach d,
// nextHop[v] the neighbour it forwards through. Deterministic tie-breaking
// (lowest next-hop ID) keeps per-node decisions consistent network-wide.
func (rt *Routing) Prepare(d graph.NodeID) {
	if _, ok := rt.dist[d]; ok {
		return
	}
	n := rt.topo.NumNodes()
	dist := make([]float64, n)
	next := make([]graph.NodeID, n)
	via := make([]graph.EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		next[i] = graph.None
		via[i] = graph.NoEdge
	}
	dist[d] = 0
	done := make([]bool, n)
	h := lsrHeap{{0, d}}
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		// Relax v→u for every neighbour v: the path v→u→…→d costs
		// cost(v over link) + dist[u].
		for _, half := range rt.topo.G.Neighbors(u) {
			v := half.Peer
			c := rt.directedCost(half.Edge, v)
			nd := it.dist + c
			switch {
			case nd < dist[v]:
			case nd == dist[v] && next[v] != graph.None && u < next[v]:
				// deterministic tie-break
			default:
				continue
			}
			dist[v] = nd
			next[v] = u
			via[v] = half.Edge
			h.push(lsrItem{nd, v})
		}
	}
	rt.dist[d] = dist
	rt.nextHop[d] = next
	rt.nextVia[d] = via
}

type lsrItem struct {
	dist float64
	node graph.NodeID
}

// lsrHeap is a typed binary min-heap on dist, mirroring container/heap's
// sift semantics exactly (strict less, left child preferred on ties) so pop
// order is unchanged from the boxed implementation it replaced.
type lsrHeap []lsrItem

func (h *lsrHeap) push(it lsrItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *lsrHeap) pop() lsrItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

func (rt *Routing) table(d graph.NodeID) []float64 {
	rt.Prepare(d)
	return rt.dist[d]
}

// OneWayDelay implements route.Router: the origin's estimate of its cost to
// reach b, which with noisy measurement differs from the true delay and
// from the reverse direction.
func (rt *Routing) OneWayDelay(a, b graph.NodeID) float64 {
	return rt.table(b)[a]
}

// RTT implements route.Router: the sum of the two directed estimates (the
// paper's "over twice the one-way delay" when costs are symmetric).
func (rt *Routing) RTT(a, b graph.NodeID) float64 {
	return rt.OneWayDelay(a, b) + rt.OneWayDelay(b, a)
}

// NextHop implements route.Router.
func (rt *Routing) NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID) {
	if cur == dest {
		return graph.None, graph.NoEdge
	}
	rt.Prepare(dest)
	return rt.nextHop[dest][cur], rt.nextVia[dest][cur]
}

// Path implements route.Router.
func (rt *Routing) Path(a, b graph.NodeID) []graph.NodeID {
	if math.IsInf(rt.table(b)[a], 1) {
		return nil
	}
	path := []graph.NodeID{a}
	for cur := a; cur != b; {
		next, _ := rt.NextHop(cur, b)
		if next == graph.None {
			return nil
		}
		path = append(path, next)
		cur = next
		if len(path) > rt.topo.NumNodes() {
			panic("lsr: routing loop")
		}
	}
	return path
}

// Hops implements route.Router.
func (rt *Routing) Hops(a, b graph.NodeID) int {
	p := rt.Path(a, b)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// conformance check
var _ interface {
	OneWayDelay(a, b graph.NodeID) float64
	RTT(a, b graph.NodeID) float64
	NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID)
	Path(a, b graph.NodeID) []graph.NodeID
	Hops(a, b graph.NodeID) int
	Prepare(d graph.NodeID)
} = (*Routing)(nil)
