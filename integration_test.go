package rmcast

// Cross-module integration tests: multi-seed invariants that tie the
// planner, the protocols, and the simulator together. These are the
// repository's "does the whole thing hold together" checks; unit-level
// behaviour lives next to each package.

import (
	"math"
	"testing"

	"rmcast/internal/experiment"
)

// TestIntegrationEveryProtocolFullRecovery runs every registered protocol
// over several seeds and loss rates and demands complete recovery and sane
// accounting identities.
func TestIntegrationEveryProtocolFullRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	protos := append(append([]string{}, experiment.PaperProtocols...),
		experiment.AblationProtocols...)
	for _, proto := range protos {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, loss := range []float64{0.05, 0.15} {
				res, err := experiment.Run(experiment.RunSpec{
					Routers: 60, Loss: loss, Protocol: proto,
					Packets: 40, Interval: 40,
					TopoSeed: seed, SimSeed: seed + 100,
				})
				if err != nil {
					t.Fatalf("%s seed=%d p=%v: %v", proto, seed, loss, err)
				}
				st := res.Stats
				if st.Losses == 0 && st.PreDetection == 0 {
					t.Fatalf("%s seed=%d p=%v: no losses", proto, seed, loss)
				}
				if st.Recoveries != st.Losses {
					t.Fatalf("%s seed=%d p=%v: %d losses but %d recoveries",
						proto, seed, loss, st.Losses, st.Recoveries)
				}
				if st.Latency.Count() != st.Recoveries {
					t.Fatalf("%s: latency samples %d != recoveries %d",
						proto, st.Latency.Count(), st.Recoveries)
				}
				// FEC can decode at the detection instant (redundancy
				// already on hand), so zero is legal; negative never is.
				if st.Latency.Min() < 0 {
					t.Fatalf("%s: negative min latency %v", proto, st.Latency.Min())
				}
				if res.Hops.Repair == 0 {
					t.Fatalf("%s: recoveries without repair traffic", proto)
				}
			}
		}
	}
}

// TestIntegrationRPDominatesBaselines is the paper's central claim at test
// scale, across several independent topologies: RP's latency beats SRM's
// and RMA's on the same topology and traffic.
func TestIntegrationRPDominatesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	wins, total := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		get := func(proto string) float64 {
			res, err := experiment.Run(experiment.RunSpec{
				Routers: 120, Loss: 0.05, Protocol: proto,
				Packets: 60, Interval: 50,
				TopoSeed: seed * 7, SimSeed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.AvgLatency()
		}
		rp, srm, rma := get("RP"), get("SRM"), get("RMA")
		total++
		if rp < srm && rp < rma {
			wins++
		}
		t.Logf("seed %d: RP=%.1f SRM=%.1f RMA=%.1f", seed, rp, srm, rma)
	}
	// Allow one unlucky topology out of five, as the paper's own n=300
	// row shows topology noise; demand a majority win.
	if wins < 4 {
		t.Fatalf("RP won only %d/%d topologies", wins, total)
	}
}

// TestIntegrationSeedDisciplineAcrossProtocols: on one topology seed, the
// loss pattern is identical for every protocol (the experiment harness's
// comparability guarantee).
func TestIntegrationSeedDisciplineAcrossProtocols(t *testing.T) {
	var losses []int64
	for _, proto := range experiment.PaperProtocols {
		res, err := experiment.Run(experiment.RunSpec{
			Routers: 80, Loss: 0.1, Protocol: proto,
			Packets: 40, Interval: 40, TopoSeed: 9, SimSeed: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.Stats.Losses)
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] != losses[0] {
			t.Fatalf("loss pattern differs across protocols: %v", losses)
		}
	}
}

// TestIntegrationPlannerExpectationTracksSimulation: with lossless
// recovery, fixed delays, and an isolated single loss, RP's measured
// recovery latency equals the cost of the realised attempt path, which the
// planner's model prices exactly; across many (client, packet) recoveries
// the measured mean must stay within the envelope of modelled expectations.
func TestIntegrationPlannerExpectationTracksSimulation(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(100), 17)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := Strategies(topo, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	var minE, maxE float64 = math.Inf(1), 0
	var sumE float64
	for _, st := range sts {
		e := st.ExpectedDelay
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
		sumE += e
	}
	meanE := sumE / float64(len(sts))
	res, err := Simulate(topo, "RP", SessionConfig{Packets: 120, Interval: 50}, 18)
	if err != nil {
		t.Fatal(err)
	}
	got := res.AvgLatency()
	// The model prices an isolated loss; concurrent upstream losses and
	// peer-recovery dynamics shift reality, but the measured mean should
	// stay within the modelled min/max envelope and within 2× of the
	// modelled mean.
	if got < minE/2 || got > maxE*2 {
		t.Fatalf("measured %.1f wildly outside modelled envelope [%.1f, %.1f]",
			got, minE, maxE)
	}
	if got > 2*meanE || got < meanE/2 {
		t.Fatalf("measured mean %.1f vs modelled mean %.1f off by >2×", got, meanE)
	}
}

// TestIntegrationLossyRecoveryConverges: with recovery traffic subject to
// 20% per-link loss everywhere, every protocol must still fully recover
// (timeout/retry machinery under maximum stress).
func TestIntegrationLossyRecoveryConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	topo, err := NewTopology(DefaultTopologyConfig(50), 19)
	if err != nil {
		t.Fatal(err)
	}
	topo.SetUniformLoss(0.2)
	for _, proto := range []string{"RP", "SRM", "RMA", "SRC"} {
		cfg := SessionConfig{Packets: 30, Interval: 60, LossyRecovery: true}
		res, err := Simulate(topo, proto, cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete || res.Stats.Unrecovered != 0 {
			t.Fatalf("%s under lossy recovery: %+v complete=%v",
				proto, res.Stats, res.Complete)
		}
		if res.Drops.Recovery() == 0 {
			t.Fatalf("%s: no recovery packets dropped at p=0.2?", proto)
		}
	}
}

// TestIntegrationPermanentPartitionAborts: a permanently dead access link
// makes recovery impossible for the stranded client; every protocol must
// hit the event cap gracefully (retry loops are unbounded by design) and
// report the stranded losses as unrecovered, not hang or panic.
func TestIntegrationPermanentPartitionAborts(t *testing.T) {
	for _, proto := range []string{"RP", "SRC"} {
		topo, err := Chain(2, 1, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		// Kill the tail client's access link forever — data AND recovery.
		var tail = topo.Clients[0]
		var link = -1
		for id, e := range topo.G.Edges() {
			if e.A == tail || e.B == tail {
				link = id
			}
		}
		topo.Loss[link] = 1
		cfg := SessionConfig{Packets: 3, Interval: 10, LossyRecovery: true, MaxEvents: 20000}
		res, err := Simulate(topo, proto, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			t.Fatalf("%s: partitioned run claims completion", proto)
		}
		if res.Stats.Recoveries != 0 {
			t.Fatalf("%s: impossible recoveries %d", proto, res.Stats.Recoveries)
		}
		if res.Events > 20000 {
			t.Fatalf("%s: event cap not honoured", proto)
		}
	}
}

// TestIntegrationPerClientModelCorrelation validates the planner's
// per-client expectations against per-client measurements: across clients,
// modelled E[delay] and measured mean recovery latency must be strongly
// positively correlated (the model need not be unbiased — concurrent
// losses shift levels — but it must rank clients correctly, which is all
// strategy selection relies on).
func TestIntegrationPerClientModelCorrelation(t *testing.T) {
	corr := func(loss float64, packets, minSamples int) (float64, int) {
		cfg := DefaultTopologyConfig(150)
		cfg.LossProb = loss
		topo, err := NewTopology(cfg, 23)
		if err != nil {
			t.Fatal(err)
		}
		sts, err := Strategies(topo, DefaultPlannerOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(topo, "RP", SessionConfig{Packets: packets, Interval: 50}, 24)
		if err != nil {
			t.Fatal(err)
		}
		var xs, ys []float64
		for c, st := range sts {
			m := res.PerClientLatency[c]
			if m.Count() < int64(minSamples) {
				continue
			}
			xs = append(xs, st.ExpectedDelay)
			ys = append(ys, m.Mean())
		}
		return pearson(xs, ys), len(xs)
	}

	// In the model's own regime — rare, isolated losses — predictions
	// must rank clients accurately.
	rLow, nLow := corr(0.01, 600, 4)
	if nLow < 20 {
		t.Fatalf("only %d clients with samples at p=1%%", nLow)
	}
	if rLow < 0.6 {
		t.Fatalf("low-loss correlation %.3f below 0.6 (%d clients)", rLow, nLow)
	}
	// At the paper's 5% the correlation degrades (concurrent losses and
	// peers-recovering-first make the static single-loss model
	// conservative) but must stay clearly positive.
	rHigh, nHigh := corr(0.05, 200, 10)
	if rHigh < 0.25 {
		t.Fatalf("5%%-loss correlation %.3f below 0.25 (%d clients)", rHigh, nHigh)
	}
	t.Logf("per-client model correlation: r=%.3f (p=1%%, %d clients), r=%.3f (p=5%%, %d clients)",
		rLow, nLow, rHigh, nHigh)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
