package rmcast

import (
	"math"
	"testing"
)

func TestPublicTopologyAndStrategies(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(60), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Clients) == 0 {
		t.Fatal("no clients generated")
	}
	sts, err := Strategies(topo, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != len(topo.Clients) {
		t.Fatalf("strategies %d for %d clients", len(sts), len(topo.Clients))
	}
	for c, st := range sts {
		if st.Client != c || st.ExpectedDelay <= 0 {
			t.Fatalf("bad strategy %+v", st)
		}
		one, err := StrategyFor(topo, c, DefaultPlannerOptions())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(one.ExpectedDelay-st.ExpectedDelay) > 1e-9 {
			t.Fatal("StrategyFor disagrees with Strategies")
		}
	}
}

func TestPublicSimulateAllProtocols(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(40), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSessionConfig()
	cfg.Packets = 25
	for _, p := range Protocols() {
		res, err := Simulate(topo, p, cfg, 3)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !res.Complete || res.Stats.Unrecovered != 0 {
			t.Fatalf("%s: bad run %+v", p, res.Stats)
		}
	}
	if _, err := Simulate(topo, "NOPE", cfg, 3); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestPublicBuilders(t *testing.T) {
	if _, err := Chain(3, 1, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Star(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Binary(2, 1); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	s := b.Source()
	r := b.Router()
	c := b.Client()
	b.TreeLink(s, r, 1)
	b.TreeLink(r, c, 1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTimeoutPolicies(t *testing.T) {
	topo, err := Chain(3, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Strategies(topo, PlannerOptions{Timeout: FixedTimeout(100), AllowDirectSource: true})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Strategies(topo, PlannerOptions{Timeout: ProportionalTimeout(2), AllowDirectSource: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != len(prop) {
		t.Fatal("policy changed client coverage")
	}
}

func TestRestrictedPlannerViaPublicAPI(t *testing.T) {
	topo, err := Chain(3, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Strategies(topo, PlannerOptions{AllowDirectSource: false})
	if err != nil {
		t.Fatal(err)
	}
	open, err := Strategies(topo, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	for c := range open {
		if restricted[c].ExpectedDelay < open[c].ExpectedDelay-1e-9 {
			t.Fatal("restricted plan beat unrestricted optimum")
		}
	}
}

func TestPublicLinkStateAndTrace(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(40), 8)
	if err != nil {
		t.Fatal(err)
	}
	rt, st := LinkStateRouting(topo, 0.2, 9)
	if st.Messages == 0 || st.ConvergenceMs <= 0 {
		t.Fatalf("bad convergence stats %+v", st)
	}
	cfg := DefaultSessionConfig()
	cfg.Packets = 20
	var tr traceCounter
	res, err := SimulateFull(topo, "RP", cfg, 10, rt, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unrecovered != 0 || !res.Complete {
		t.Fatalf("LSR run failed: %+v", res.Stats)
	}
	if tr.n == 0 {
		t.Fatal("tracer saw no events")
	}
}

// traceCounter is a minimal Tracer for the public API test.
type traceCounter struct{ n int }

func (c *traceCounter) Emit(TraceEvent) { c.n++ }

func TestPublicTreeKinds(t *testing.T) {
	cfg := DefaultTopologyConfig(60)
	cfg.Tree = ShortestPathTree
	topo, err := NewTopology(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Clients) == 0 {
		t.Fatal("SPT topology has no clients")
	}
	res, err := Simulate(topo, "RP", SessionConfig{Packets: 20, Interval: 40}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("SPT run failed: %+v", res.Stats)
	}
}

func TestPublicGapDetection(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(40), 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{Packets: 30, Interval: 40, Detection: DetectGap}
	res, err := Simulate(topo, "RP", cfg, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unrecovered != 0 || !res.Complete {
		t.Fatalf("gap-detection run failed: %+v", res.Stats)
	}
	if res.LatencyQuantile(0.95) < res.LatencyQuantile(0.5) {
		t.Fatal("quantiles inverted")
	}
}

func TestPublicRosterChurn(t *testing.T) {
	topo, err := NewTopology(DefaultTopologyConfig(50), 21)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRoster(topo, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := topo.Clients[0]
	if _, err := r.Leave(v); err != nil {
		t.Fatal(err)
	}
	if r.Active(v) {
		t.Fatal("left member still active")
	}
	if _, err := r.Join(v); err != nil {
		t.Fatal(err)
	}
	st := r.Strategy(v)
	if st == nil || st.ExpectedDelay <= 0 {
		t.Fatalf("bad rejoined strategy %+v", st)
	}
}

func TestPublicTransitStub(t *testing.T) {
	topo, err := NewTransitStubTopology(DefaultTopologyConfig(1), TransitStubParams{}, 31)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(topo, "RP", SessionConfig{Packets: 25, Interval: 40}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unrecovered != 0 || !res.Complete {
		t.Fatalf("transit-stub run failed: %+v", res.Stats)
	}
	// Planner coverage: a strategy exists for every client. (Interesting
	// structural finding, asserted only loosely: stub siblings meet so
	// close to the client that they almost always share its loss, so with
	// the default β=3 timeout the optimum is often direct-to-source; a
	// cheaper failure probe — lower β or NAK replies — re-enables them.)
	sts, err := Strategies(topo, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != len(topo.Clients) {
		t.Fatalf("strategies %d for %d clients", len(sts), len(topo.Clients))
	}
	cheap, err := Strategies(topo, PlannerOptions{
		Timeout: ProportionalTimeout(1.2), AllowDirectSource: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	withPeers := 0
	for _, st := range cheap {
		if len(st.Peers) > 0 {
			withPeers++
		}
	}
	if withPeers == 0 {
		t.Fatal("even with cheap probes no client uses a peer")
	}
}
