// Command benchdiff compares two benchmark captures produced by
// `make bench-json` (`go test -json -bench ...`) and fails when a tracked
// benchmark regressed in ns/op by more than the threshold.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -threshold 0.10 -track '^BenchmarkFigure5/' OLD.json NEW.json
//
// Only benchmarks whose names match -track gate the exit status (the
// default tracks the paper-figure macro benchmarks); everything else is
// reported for information. Improvements never fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// benchLine matches a self-contained benchmark result line, e.g.
// "BenchmarkFigure5/n=50/SRM-8   30   5614447 ns/op ...". The trailing -N
// GOMAXPROCS suffix is stripped from the reported name.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// nsOnly matches the numbers-only form test2json emits when the benchmark
// name was flushed in an earlier output event; the name then rides in the
// event's Test field.
var nsOnly = regexp.MustCompile(`^\s*\d+\t\s*([0-9.]+) ns/op`)

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parse extracts benchmark name → ns/op from a capture file. A benchmark
// appearing several times (e.g. -count > 1) keeps its last value.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (raw bench output)
		}
		if ev.Action != "output" || !strings.Contains(ev.Output, " ns/op") {
			continue
		}
		name, val := ev.Test, ""
		if m := benchLine.FindStringSubmatch(ev.Output); m != nil {
			if name == "" {
				name = m[1]
			}
			val = m[3]
		} else if name != "" {
			if m := nsOnly.FindStringSubmatch(ev.Output); m != nil {
				val = m[1]
			}
		}
		if name == "" || val == "" {
			continue
		}
		var ns float64
		if _, err := fmt.Sscanf(val, "%g", &ns); err == nil {
			res[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10,
		"maximum tolerated ns/op regression on tracked benchmarks (fraction)")
	track := flag.String("track", `^BenchmarkFigure5/`,
		"regexp of benchmark names that gate the exit status")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	tracked, err := regexp.Compile(*track)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -track: %v\n", err)
		os.Exit(2)
	}
	oldNs, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newNs, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tstatus")
	for _, name := range names {
		old, ok := oldNs[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\tnew\n", name, newNs[name])
			continue
		}
		delta := (newNs[name] - old) / old
		status := "ok"
		if tracked.MatchString(name) {
			if delta > *threshold {
				status = "REGRESSION"
				failed = true
			}
		} else {
			status = "untracked"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n", name, old, newNs[name], 100*delta, status)
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\tremoved\n", name, oldNs[name])
		}
	}
	tw.Flush()
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: tracked benchmark regressed more than %.0f%%\n", *threshold*100)
		os.Exit(1)
	}
}
