// Command benchdiff compares two benchmark captures produced by
// `make bench-json` (`go test -json -bench ...`) and fails when a tracked
// benchmark regressed in ns/op or allocs/op by more than the threshold.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -threshold 0.10 -track '^BenchmarkFigure5/' OLD.json NEW.json
//
// Only benchmarks whose names match -track gate the exit status (the
// default tracks the paper-figure macro benchmarks, the batch planner, and
// the parallel-engine cells); everything else is reported for information. Improvements never fail.
// Allocation gating additionally requires the absolute increase to be at
// least two allocations (one can be measurement noise), so the planner's
// zero-allocation steady state cannot decay silently while one-off jitter
// never fails a build. Wall-clock gating has a floor of its own (-minns,
// default 5 ms/op): cells faster than that cannot be held to a 10% band
// at a handful of iterations — scheduler noise between two captures
// routinely exceeds it — so they gate on allocs/op only, which is exact.
//
// Two further rules serve the strategy-service cells:
//
//   - Tail-latency gating: cells reporting a p99-ns/op metric
//     (BenchmarkStrategyService) gate on it with a wider band
//     (-p99threshold, default 50%). A p99 of a ~50 ns wait-free read is
//     scheduler-sensitive at the ±1-bucket level, but the regression this
//     gate exists to catch — a lock or a retry loop on the read path — is
//     a 10–100× blowup, far outside any noise band.
//   - Alloc-gate skip (-allocskip): background-churn cells inherit the
//     applier goroutine's replanning allocations at a nondeterministic
//     phase, so their allocs/op is not comparable between captures; the
//     churn-free twin cells carry the zero-alloc read-path contract
//     instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// benchLine matches a self-contained benchmark result line, e.g.
// "BenchmarkFigure5/n=50/SRM-8   30   5614447 ns/op ...". The trailing -N
// GOMAXPROCS suffix is stripped from the reported name.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// nsOnly matches the numbers-only form test2json emits when the benchmark
// name was flushed in an earlier output event; the name then rides in the
// event's Test field.
var nsOnly = regexp.MustCompile(`^\s*\d+\t\s*([0-9.]+) ns/op`)

// allocsPer matches the -benchmem allocation column on either line form.
var allocsPer = regexp.MustCompile(`\s(\d+) allocs/op`)

// p99Per matches the p99-ns/op custom metric the strategy-service
// benchmark reports (either line form).
var p99Per = regexp.MustCompile(`\s([0-9.]+) p99-ns/op`)

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result is one benchmark's captured metrics. Allocs is only meaningful
// when HasAllocs is set (the capture ran with -benchmem); P99 when HasP99
// is set (the cell reports p99-ns/op).
type result struct {
	Ns        float64
	Allocs    float64
	HasAllocs bool
	P99       float64
	HasP99    bool
}

// parse extracts benchmark name → metrics from a capture file. A benchmark
// appearing several times (bench-json appends whole suite passes; -count
// also works) keeps its *minimum* ns/op: repeat samples minutes apart see
// independent draws of the host's CPU steal, and since steal only ever
// inflates a timing, the minimum is the robust estimator of the true cost.
// Allocs keep the maximum, so an allocation regression can never hide
// behind one lucky sample.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (raw bench output)
		}
		if ev.Action != "output" || !strings.Contains(ev.Output, " ns/op") {
			continue
		}
		name, val := ev.Test, ""
		if m := benchLine.FindStringSubmatch(ev.Output); m != nil {
			if name == "" {
				name = m[1]
			}
			val = m[3]
		} else if name != "" {
			if m := nsOnly.FindStringSubmatch(ev.Output); m != nil {
				val = m[1]
			}
		}
		if name == "" || val == "" {
			continue
		}
		var r result
		if _, err := fmt.Sscanf(val, "%g", &r.Ns); err != nil {
			continue
		}
		if m := allocsPer.FindStringSubmatch(ev.Output); m != nil {
			fmt.Sscanf(m[1], "%g", &r.Allocs)
			r.HasAllocs = true
		}
		if m := p99Per.FindStringSubmatch(ev.Output); m != nil {
			fmt.Sscanf(m[1], "%g", &r.P99)
			r.HasP99 = true
		}
		if prev, ok := res[name]; ok {
			if prev.Ns < r.Ns {
				r.Ns = prev.Ns
			}
			if prev.HasAllocs {
				if !r.HasAllocs || prev.Allocs > r.Allocs {
					r.Allocs = prev.Allocs
				}
				r.HasAllocs = true
			}
			// Like ns/op, p99 keeps the minimum: contention from host
			// noise only ever inflates the tail.
			if prev.HasP99 {
				if !r.HasP99 || prev.P99 < r.P99 {
					r.P99 = prev.P99
				}
				r.HasP99 = true
			}
		}
		res[name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}

// allocsRegressed applies the allocation gate: relative growth past the
// threshold AND an absolute increase of at least two allocations, or any
// departure from a previously zero-allocation benchmark.
func allocsRegressed(old, new, threshold float64) bool {
	if old == 0 {
		return new >= 2
	}
	return (new-old)/old > threshold && new-old >= 2
}

func main() {
	threshold := flag.Float64("threshold", 0.10,
		"maximum tolerated ns/op or allocs/op regression on tracked benchmarks (fraction)")
	track := flag.String("track", `^BenchmarkFigure5/|^BenchmarkPlanAll|^BenchmarkParallelEngine|^BenchmarkHierarchicalDomains|^BenchmarkCoopRecovery|^BenchmarkFailover|^BenchmarkStrategyService`,
		"regexp of benchmark names that gate the exit status")
	minNs := flag.Float64("minns", 5e6,
		"ns/op floor for wall-clock gating: cells faster than this only gate on allocs/op (few-iteration timings of small cells are scheduler noise)")
	p99Threshold := flag.Float64("p99threshold", 0.50,
		"maximum tolerated p99-ns/op regression on tracked benchmarks (fraction; wide because a wait-free read's tail is bucket- and scheduler-quantised, while the failure mode this catches — a lock on the read path — is orders of magnitude)")
	allocSkip := flag.String("allocskip", `^BenchmarkStrategyService/.*churn=[1-9]`,
		"regexp of benchmark names whose allocs/op is nondeterministic (background-churn cells) and therefore not alloc-gated")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	tracked, err := regexp.Compile(*track)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -track: %v\n", err)
		os.Exit(2)
	}
	allocSkipped, err := regexp.Compile(*allocSkip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -allocskip: %v\n", err)
		os.Exit(2)
	}
	oldRes, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\told p99\tnew p99\tstatus")
	for _, name := range names {
		nw := newRes[name]
		newAllocs, newP99 := "-", "-"
		if nw.HasAllocs {
			newAllocs = fmt.Sprintf("%.0f", nw.Allocs)
		}
		if nw.HasP99 {
			newP99 = fmt.Sprintf("%.0f", nw.P99)
		}
		old, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t-\t%s\t-\t%s\tnew\n", name, nw.Ns, newAllocs, newP99)
			continue
		}
		oldAllocs, oldP99 := "-", "-"
		if old.HasAllocs {
			oldAllocs = fmt.Sprintf("%.0f", old.Allocs)
		}
		if old.HasP99 {
			oldP99 = fmt.Sprintf("%.0f", old.P99)
		}
		delta := (nw.Ns - old.Ns) / old.Ns
		status := "untracked"
		if tracked.MatchString(name) {
			status = "ok"
			if delta > *threshold && old.Ns >= *minNs {
				status = "REGRESSION"
				failed = true
			}
			if old.HasAllocs && nw.HasAllocs && !allocSkipped.MatchString(name) &&
				allocsRegressed(old.Allocs, nw.Allocs, *threshold) {
				status = "REGRESSION(allocs)"
				failed = true
			}
			if old.HasP99 && nw.HasP99 && old.P99 > 0 && (nw.P99-old.P99)/old.P99 > *p99Threshold {
				status = "REGRESSION(p99)"
				failed = true
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\t%s\t%s\t%s\n",
			name, old.Ns, nw.Ns, 100*delta, oldAllocs, newAllocs, oldP99, newP99, status)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t-\t-\t-\t-\tremoved\n", name, oldRes[name].Ns)
		}
	}
	tw.Flush()
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: tracked benchmark regressed more than %.0f%%\n", *threshold*100)
		os.Exit(1)
	}
}
