package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCapture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseReadsNsAndAllocs(t *testing.T) {
	capture := `{"Action":"output","Test":"","Output":"BenchmarkPlanAll/tree/n=5000-8  400  2556000 ns/op  0 B/op  0 allocs/op\n"}
{"Action":"output","Test":"BenchmarkFigure5/n=50/SRM","Output":"  30\t 5614447 ns/op\t 120 B/op\t 7 allocs/op\n"}
{"Action":"output","Test":"","Output":"BenchmarkOld-8  10  99 ns/op\n"}
not json at all
`
	res, err := parse(writeCapture(t, "cap.json", capture))
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := res["BenchmarkPlanAll/tree/n=5000"]
	if !ok || tree.Ns != 2556000 || !tree.HasAllocs || tree.Allocs != 0 {
		t.Fatalf("tree cell parsed as %+v (present=%v)", tree, ok)
	}
	srm, ok := res["BenchmarkFigure5/n=50/SRM"]
	if !ok || srm.Ns != 5614447 || !srm.HasAllocs || srm.Allocs != 7 {
		t.Fatalf("split-line cell parsed as %+v (present=%v)", srm, ok)
	}
	// Captures without -benchmem still parse, with allocs unknown.
	old, ok := res["BenchmarkOld"]
	if !ok || old.Ns != 99 || old.HasAllocs {
		t.Fatalf("benchmem-less cell parsed as %+v (present=%v)", old, ok)
	}
}

func TestAllocsRegressed(t *testing.T) {
	cases := []struct {
		old, new float64
		want     bool
	}{
		{0, 0, false},
		{0, 1, false}, // one stray allocation is noise
		{0, 8, true},  // zero-alloc contract broken
		{100, 105, false},
		{100, 115, true},   // >10% and ≥2 absolute
		{10, 11, false},    // 10% but only +1 absolute
		{1000, 900, false}, // improvement
	}
	for _, c := range cases {
		if got := allocsRegressed(c.old, c.new, 0.10); got != c.want {
			t.Errorf("allocsRegressed(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}
