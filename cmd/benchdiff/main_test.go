package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCapture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseReadsNsAndAllocs(t *testing.T) {
	capture := `{"Action":"output","Test":"","Output":"BenchmarkPlanAll/tree/n=5000-8  400  2556000 ns/op  0 B/op  0 allocs/op\n"}
{"Action":"output","Test":"BenchmarkFigure5/n=50/SRM","Output":"  30\t 5614447 ns/op\t 120 B/op\t 7 allocs/op\n"}
{"Action":"output","Test":"","Output":"BenchmarkOld-8  10  99 ns/op\n"}
not json at all
`
	res, err := parse(writeCapture(t, "cap.json", capture))
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := res["BenchmarkPlanAll/tree/n=5000"]
	if !ok || tree.Ns != 2556000 || !tree.HasAllocs || tree.Allocs != 0 {
		t.Fatalf("tree cell parsed as %+v (present=%v)", tree, ok)
	}
	srm, ok := res["BenchmarkFigure5/n=50/SRM"]
	if !ok || srm.Ns != 5614447 || !srm.HasAllocs || srm.Allocs != 7 {
		t.Fatalf("split-line cell parsed as %+v (present=%v)", srm, ok)
	}
	// Captures without -benchmem still parse, with allocs unknown.
	old, ok := res["BenchmarkOld"]
	if !ok || old.Ns != 99 || old.HasAllocs {
		t.Fatalf("benchmem-less cell parsed as %+v (present=%v)", old, ok)
	}
}

func TestParseReadsP99(t *testing.T) {
	capture := `{"Action":"output","Test":"","Output":"BenchmarkStrategyService/readers=4/churn=0-8  3  106.5 ns/op  0 batch-mean  40.00 p50-ns/op  56.00 p99-ns/op  9385687 qps  0 B/op  0 allocs/op\n"}
{"Action":"output","Test":"BenchmarkStrategyService/readers=4/churn=0","Output":"  3\t 98.2 ns/op\t 0 batch-mean\t 40.00 p50-ns/op\t 40.00 p99-ns/op\t 10183299 qps\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Test":"","Output":"BenchmarkFigure5/n=50/SRM-8  30  5614447 ns/op  120 B/op  7 allocs/op\n"}
`
	res, err := parse(writeCapture(t, "cap.json", capture))
	if err != nil {
		t.Fatal(err)
	}
	svc, ok := res["BenchmarkStrategyService/readers=4/churn=0"]
	if !ok || !svc.HasP99 {
		t.Fatalf("service cell parsed as %+v (present=%v)", svc, ok)
	}
	// Min across repeated samples, for p99 and ns alike.
	if svc.P99 != 40 || svc.Ns != 98.2 {
		t.Fatalf("expected min p99=40/ns=98.2, got %+v", svc)
	}
	// The p50-ns/op column must not be mistaken for the p99 metric.
	if svc.P99 == 40 && svc.Allocs != 0 {
		t.Fatalf("allocs misparsed: %+v", svc)
	}
	// Cells without the metric stay p99-less.
	if srm := res["BenchmarkFigure5/n=50/SRM"]; srm.HasP99 {
		t.Fatalf("figure cell grew a p99: %+v", srm)
	}
}

func TestAllocsRegressed(t *testing.T) {
	cases := []struct {
		old, new float64
		want     bool
	}{
		{0, 0, false},
		{0, 1, false}, // one stray allocation is noise
		{0, 8, true},  // zero-alloc contract broken
		{100, 105, false},
		{100, 115, true},   // >10% and ≥2 absolute
		{10, 11, false},    // 10% but only +1 absolute
		{1000, 900, false}, // improvement
	}
	for _, c := range cases {
		if got := allocsRegressed(c.old, c.new, 0.10); got != c.want {
			t.Errorf("allocsRegressed(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}
