// Command rmsim runs one reliable-multicast recovery simulation and prints
// the per-protocol metrics, exactly as the experiment harness measures them
// for the paper's figures.
//
// Usage:
//
//	rmsim -routers 500 -loss 0.05 -protocol RP
//	rmsim -routers 200 -loss 0.10 -protocol all -packets 200
//
// With -protocol all the per-protocol runs execute on -parallel workers
// (default: one per CPU); each run is independently seeded so the printed
// rows are identical at any worker count. -trace forces serial execution so
// the event trace stays a single ordered stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"

	"rmcast/internal/experiment"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
	"rmcast/internal/trace"
)

func main() {
	var (
		routers  = flag.Int("routers", 200, "backbone router count m")
		loss     = flag.Float64("loss", 0.05, "per-link loss probability")
		proto    = flag.String("protocol", "RP", "protocol name or 'all' (see rmsim -list)")
		packets  = flag.Int("packets", 100, "data packets to multicast")
		interval = flag.Float64("interval", 50, "inter-packet interval (ms)")
		topoSeed = flag.Uint64("toposeed", 1, "topology seed")
		simSeed  = flag.Uint64("seed", 1, "traffic/timer seed")
		list     = flag.Bool("list", false, "list protocol names and exit")
		traceOut = flag.String("trace", "", "write a structured event trace to this file ('-' for stderr)")
		jitter   = flag.Float64("jitter", 0, "per-traversal delay jitter fraction")
		gapDet   = flag.Bool("gapdetect", false, "use sequence-gap loss detection instead of the idealised model")
		lossyRec = flag.Bool("lossyrecovery", false, "subject recovery traffic to link loss")
		asJSON   = flag.Bool("json", false, "emit per-protocol results as JSON")
		chaos    = flag.Bool("chaos", false,
			"run the fault-injection (chaos) sweep instead of a single run: crashes, link outages and burst loss rising with severity, RP vs SRM vs RMA vs RP-RESILIENT vs COOP")
		churn = flag.Bool("churn", false,
			"run the mobility-style churn sweep instead of a single run: crash waves aimed at the coordinator succession line with rate rising 0→1, SRM vs RP vs RP-RESILIENT vs RP-FAILOVER")
		adversarial = flag.Bool("adversarial", false,
			"run the adversarial message-plane sweep instead of a single run: control-packet duplication, reordering, corruption and repair storms rising with intensity, SRM vs RMA vs RP vs SRC vs COOP")
		scaling = flag.Bool("scaling", false,
			"run the large-n planning scaling tier instead of a simulation: tree-aggregated batch planner vs the O(N²) scan on tree-only topologies")
		sizes = flag.String("sizes", "",
			"comma-separated client counts for -scaling (default 1000,5000,20000,50000)")
		reps     = flag.Int("replicates", 1, "replicate seeds per chaos/adversarial cell")
		parallel = flag.Int("parallel", experiment.DefaultParallelism(),
			"worker count for multi-protocol runs (1 = serial; output is identical either way)")
		simWorkers = flag.Int("simworkers", 0,
			"shard a single run across this many workers (conservative parallel engine; 0/1 = serial, output is bit-identical either way; ineligible configs fall back to serial). With -scaling, adds a serial-vs-sharded simulation phase per cell")
		domainSize = flag.Int("domainsize", 0,
			"hierarchical-domain mode: partition the group into recovery domains of about this many clients, one engine per domain (requires -simworkers >= 2; the domain count never depends on the worker count, so output stays bit-identical). Also applies to -scaling's simulation phase")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, p := range append(append([]string{}, experiment.PaperProtocols...), experiment.AblationProtocols...) {
			fmt.Println(p)
		}
		fmt.Println("RP-RESILIENT")
		fmt.Println("RP-FAILOVER")
		fmt.Println("COOP")
		return
	}

	if *churn {
		sweep := experiment.DefaultChurn()
		sweep.Routers = *routers
		sweep.BaseLoss = *loss
		sweep.Packets = *packets
		sweep.Interval = *interval
		sweep.BaseSeed = *simSeed
		sweep.Replicates = *reps
		sweep.Parallel = *parallel
		delivery, latency, p99, failovers, err := sweep.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		emitFigures(delivery, latency, p99, failovers)
		return
	}

	if *chaos {
		sweep := experiment.DefaultChaos()
		sweep.Routers = *routers
		sweep.BaseLoss = *loss
		sweep.Packets = *packets
		sweep.Interval = *interval
		sweep.BaseSeed = *simSeed
		sweep.Replicates = *reps
		sweep.Parallel = *parallel
		delivery, latency, p99, bandwidth, err := sweep.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		emitFigures(delivery, latency, p99, bandwidth)
		return
	}

	if *scaling {
		sweep := experiment.DefaultScaling()
		sweep.BaseSeed = *simSeed
		sweep.SimWorkers = *simWorkers
		sweep.DomainClients = *domainSize
		if *sizes != "" {
			sweep.Sizes = nil
			for _, s := range strings.Split(*sizes, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "rmsim: bad -sizes entry %q\n", s)
					os.Exit(2)
				}
				sweep.Sizes = append(sweep.Sizes, n)
			}
		}
		report, err := sweep.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			err = enc.Encode(report)
		} else {
			err = report.Format(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *adversarial {
		sweep := experiment.DefaultAdversarial()
		sweep.Routers = *routers
		sweep.BaseLoss = *loss
		sweep.Packets = *packets
		sweep.Interval = *interval
		sweep.BaseSeed = *simSeed
		sweep.Replicates = *reps
		sweep.Parallel = *parallel
		delivery, latency, p99, bandwidth, err := sweep.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		emitFigures(delivery, latency, p99, bandwidth)
		return
	}

	protos := []string{*proto}
	if *proto == "all" {
		protos = experiment.PaperProtocols
	}

	var tracer trace.Tracer
	if *traceOut != "" {
		w := os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		tracer = trace.NewWriter(w)
	}

	type jsonRow struct {
		Protocol   string  `json:"protocol"`
		Clients    int     `json:"clients"`
		Losses     int64   `json:"losses"`
		Recovered  int64   `json:"recovered"`
		LatencyMs  float64 `json:"latencyMs"`
		P95Ms      float64 `json:"p95Ms"`
		RepairHops float64 `json:"repairHopsPerRecovery"`
		ReqHops    float64 `json:"requestHopsPerRecovery"`
		Duplicates int64   `json:"duplicates"`
		Events     uint64  `json:"events"`
	}

	// Each protocol run is independent (fresh topology and session from the
	// same seeds), so they fan out to workers; results gather by index and
	// print in the requested order. Tracing shares one writer, so it forces
	// the serial path.
	runOne := func(p string) (*protocol.Result, error) {
		topo, err := topology.Standard(*routers, *loss, *topoSeed)
		if err != nil {
			return nil, err
		}
		eng, err := experiment.NewEngine(p)
		if err != nil {
			return nil, err
		}
		cfg := protocol.Config{
			Packets: *packets, Interval: *interval,
			Jitter: *jitter, LossyRecovery: *lossyRec,
			SimWorkers: *simWorkers, DomainClients: *domainSize,
		}
		if *gapDet {
			cfg.Detection = protocol.DetectGap
		}
		sess, err := protocol.NewSession(topo, eng, cfg, *simSeed)
		if err != nil {
			return nil, err
		}
		sess.Trace = tracer
		res := sess.Run()
		if res.Stats.Unrecovered > 0 || !res.Complete {
			return nil, fmt.Errorf("%s left %d losses unrecovered (complete=%v)",
				p, res.Stats.Unrecovered, res.Complete)
		}
		return res, nil
	}

	workers := *parallel
	if workers < 1 || tracer != nil {
		workers = 1
	}
	if workers > len(protos) {
		workers = len(protos)
	}
	results := make([]*protocol.Result, len(protos))
	errs := make([]error, len(protos))
	if workers <= 1 {
		for i, p := range protos {
			results[i], errs[i] = runOne(p)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = runOne(protos[i])
				}
			}()
		}
		for i := range protos {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
	}

	// Sharding was requested but some run fell back to the byte-exact serial
	// path: say why, so a surprising lack of speed-up is explainable.
	if *simWorkers >= 2 {
		for i, p := range protos {
			res := results[i]
			if !res.Sharded && res.SerialReason != "" {
				fmt.Fprintf(os.Stderr, "rmsim: %s ran serial: %s\n", p, res.SerialReason)
			}
			if res.Domains > 0 {
				fmt.Fprintf(os.Stderr, "rmsim: %s ran in %d recovery domains (~%d clients each)\n",
					p, res.Domains, *domainSize)
			}
		}
	}

	var jsonRows []jsonRow
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tclients\tlosses\trecovered\tlatency(ms)\tp95(ms)\trepair bw(hops)\treq bw(hops)\tdup\tevents")
	for i, p := range protos {
		res := results[i]
		if *asJSON {
			jsonRows = append(jsonRows, jsonRow{
				Protocol: p, Clients: res.Clients,
				Losses: res.Stats.Losses, Recovered: res.Stats.Recoveries,
				LatencyMs: res.AvgLatency(), P95Ms: res.LatencyQuantile(0.95),
				RepairHops: res.BandwidthPerRecovery(),
				ReqHops:    res.RequestHopsPerRecovery(),
				Duplicates: res.Stats.Duplicates, Events: res.Events,
			})
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%d\t%d\n",
			p, res.Clients, res.Stats.Losses, res.Stats.Recoveries,
			res.AvgLatency(), res.LatencyQuantile(0.95), res.BandwidthPerRecovery(),
			res.RequestHopsPerRecovery(), res.Stats.Duplicates, res.Events)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRows); err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
		os.Exit(1)
	}
}

// emitFigures prints a sweep's four figures as tables.
func emitFigures(figs ...*experiment.Figure) {
	for _, f := range figs {
		if err := f.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rmsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
