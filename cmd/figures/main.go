// Command figures regenerates the paper's evaluation figures (Figures 5–8)
// and the ablation table, printing aligned text tables or CSV.
//
// Usage:
//
//	figures                  # all four figures at paper parameters
//	figures -fig 7           # one figure's sweep
//	figures -fig ablation    # RP-variant ablation
//	figures -csv -fig 5      # machine-readable output
//	figures -packets 40      # faster, noisier runs
//	figures -parallel 1      # force the legacy serial sweep loop
//
// Sweeps fan out over -parallel workers (default: one per CPU); every cell
// is independently seeded, so the output is bit-identical at any worker
// count.
//
// The robustness sweeps (-fig chaos, -fig adversarial, -fig churn) compare
// the paper's engines against the hardened variants, including the
// cooperative coded repair engine COOP (internal/protocol/coop) with its
// symbol-plane mutation class and the epoch-fenced RP failover engine
// RP-FAILOVER (internal/protocol/rpproto) under coordinator-aimed churn.
package main

import (
	"flag"
	"fmt"
	"os"

	"rmcast/internal/experiment"
	"rmcast/internal/viz"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "5|6|7|8|56|78|ablation|chaos|adversarial|churn|scaling|all")
		packets  = flag.Int("packets", 100, "data packets per run")
		reps     = flag.Int("reps", 1, "traffic-seed replicates per cell")
		seed     = flag.Uint64("seed", 2003, "base seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		chart    = flag.Bool("chart", false, "render ASCII charts beneath each table")
		svgOut   = flag.String("svg", "", "also write SVG charts, stacked, to this file")
		md       = flag.Bool("md", false, "emit markdown tables (for EXPERIMENTS.md)")
		interval = flag.Float64("interval", 50, "inter-packet interval (ms)")
		parallel = flag.Int("parallel", experiment.DefaultParallelism(),
			"sweep worker count (1 = legacy serial loop; results are identical either way)")
		simWorkers = flag.Int("simworkers", 0,
			"with -fig scaling: add a serial-vs-sharded simulation phase per cell at this worker count (0 = off)")
		domainSize = flag.Int("domainsize", 0,
			"with -fig scaling: run the sharded half of the simulation phase in hierarchical-domain mode at about this many clients per domain (0 = classic sharding)")
	)
	flag.Parse()

	var svgFile *os.File
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		svgFile = f
	}

	emit := func(f *experiment.Figure) {
		var err error
		switch {
		case *md:
			err = f.Markdown(os.Stdout)
		case *csv:
			err = f.CSV(os.Stdout)
		default:
			err = f.Format(os.Stdout)
			if err == nil && *chart {
				err = f.Chart(os.Stdout, 60, 14)
			}
			fmt.Println()
		}
		if err == nil && svgFile != nil {
			_, err = viz.FigureSVG(f, 720, 420).WriteTo(svgFile)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	need56 := *fig == "all" || *fig == "5" || *fig == "6" || *fig == "56"
	need78 := *fig == "all" || *fig == "7" || *fig == "8" || *fig == "78"
	needAb := *fig == "all" || *fig == "ablation"
	needCh := *fig == "all" || *fig == "chaos"
	needAdv := *fig == "all" || *fig == "adversarial"
	needChu := *fig == "all" || *fig == "churn"
	// The scaling tier is a planning-performance probe, not a paper figure,
	// so "all" does not imply it; ask for it explicitly.
	needSc := *fig == "scaling"
	if !need56 && !need78 && !needAb && !needCh && !needAdv && !needChu && !needSc {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q\n", *fig)
		os.Exit(2)
	}

	if need56 {
		g := experiment.PaperFigure56()
		g.Packets, g.Replicates, g.BaseSeed, g.Interval = *packets, *reps, *seed, *interval
		g.Parallel = *parallel
		lat, bw, err := g.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if *fig != "6" {
			emit(lat)
		}
		if *fig != "5" {
			emit(bw)
		}
	}
	if need78 {
		l := experiment.PaperFigure78()
		l.Packets, l.Replicates, l.BaseSeed, l.Interval = *packets, *reps, *seed, *interval
		l.Parallel = *parallel
		lat, bw, err := l.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if *fig != "8" {
			emit(lat)
		}
		if *fig != "7" {
			emit(bw)
		}
	}
	if needAb {
		a := experiment.PaperAblation()
		a.Packets, a.Replicates, a.BaseSeed, a.Interval = *packets, *reps, *seed, *interval
		a.Parallel = *parallel
		lat, bw, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		emit(lat)
		emit(bw)
	}
	if needCh {
		c := experiment.DefaultChaos()
		c.Packets, c.Replicates, c.BaseSeed, c.Interval = *packets, *reps, *seed, *interval
		c.Parallel = *parallel
		delivery, lat, p99, bw, err := c.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		emit(delivery)
		emit(lat)
		emit(p99)
		emit(bw)
	}
	if needAdv {
		a := experiment.DefaultAdversarial()
		a.Packets, a.Replicates, a.BaseSeed, a.Interval = *packets, *reps, *seed, *interval
		a.Parallel = *parallel
		delivery, lat, p99, bw, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		emit(delivery)
		emit(lat)
		emit(p99)
		emit(bw)
	}
	if needChu {
		c := experiment.DefaultChurn()
		c.Packets, c.Replicates, c.BaseSeed, c.Interval = *packets, *reps, *seed, *interval
		c.Parallel = *parallel
		delivery, lat, p99, failovers, err := c.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		emit(delivery)
		emit(lat)
		emit(p99)
		emit(failovers)
	}
	if needSc {
		s := experiment.DefaultScaling()
		s.BaseSeed = *seed
		s.SimWorkers = *simWorkers
		s.DomainClients = *domainSize
		report, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		switch {
		case *md:
			err = report.Markdown(os.Stdout)
		case *csv:
			err = report.CSV(os.Stdout)
		default:
			err = report.Format(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}
