// Command strategy inspects the RP planning pipeline on one topology: the
// competitive equivalence classes, the candidate clients, the strategy
// graph, and the optimal prioritized list per client — with an optional
// brute-force cross-check on small instances (paper §4, Algorithm 1).
//
// Usage:
//
//	strategy -routers 50 -seed 7            # all clients, summary lines
//	strategy -routers 50 -seed 7 -client 0  # one client, full detail
//	strategy -verify                        # add brute-force optimality check
//	strategy -stress -readers 4 -churnrate 2000 -duration 3s
//
// The summary listing is served from a strategysvc snapshot and prints its
// version/epoch header, so output is correlatable with what concurrent
// readers of the service would observe. -stress runs the readers × churn
// workload against the service and reports throughput, latency quantiles,
// and the applier's batching counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/strategysvc"
	"rmcast/internal/topology"
	"rmcast/internal/viz"
)

func main() {
	var (
		routers  = flag.Int("routers", 50, "backbone router count")
		seed     = flag.Uint64("seed", 1, "topology seed")
		client   = flag.Int("client", -1, "client index for full detail (-1: all, summary)")
		verify   = flag.Bool("verify", false, "cross-check against brute force where feasible")
		noDirect = flag.Bool("nodirect", false, "restricted strategies (no direct u→S edge)")
		beta     = flag.Float64("beta", 3, "timeout factor (t0 = beta·rtt)")
		asJSON   = flag.Bool("json", false, "emit all strategies as JSON and exit")
		svgOut   = flag.String("svg", "", "with -client: write the strategy graph as SVG to this file")
		stress   = flag.Bool("stress", false, "run the strategy-service stress workload and exit")
		readers  = flag.Int("readers", 4, "with -stress: concurrent reader goroutines")
		churn    = flag.Int("churnrate", 2000, "with -stress: Join/Leave churn ops per second (0: none)")
		duration = flag.Duration("duration", 3*time.Second, "with -stress: run length")
	)
	flag.Parse()

	if *stress {
		runStress(*routers, *seed, *beta, !*noDirect, *readers, *churn, *duration)
		return
	}

	topo, err := topology.Generate(topology.DefaultConfig(*routers), rng.New(*seed))
	if err != nil {
		fail(err)
	}
	tree, err := mtree.Build(topo)
	if err != nil {
		fail(err)
	}
	p := core.NewPlanner(tree, route.Build(topo))
	p.Timeout = core.ProportionalTimeout(*beta)
	p.AllowDirectSource = !*noDirect

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p.All()); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("topology: %d routers, %d clients, source %d, tree depth max %d\n",
		*routers, len(topo.Clients), topo.Source, maxDepth(tree))

	if *client >= 0 {
		if *client >= len(topo.Clients) {
			fail(fmt.Errorf("client index %d out of range [0,%d)", *client, len(topo.Clients)))
		}
		u := topo.Clients[*client]
		if *svgOut != "" {
			f, err := os.Create(*svgOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if _, err := viz.StrategyGraphSVG(p.BuildStrategyGraph(u), 1000, 340).WriteTo(f); err != nil {
				fail(err)
			}
			fmt.Printf("wrote strategy graph of client %d to %s\n", u, *svgOut)
			return
		}
		detail(p, tree, u, *verify)
		return
	}

	// Serve the summary from a strategysvc snapshot so the listing carries
	// the version/epoch a concurrent reader of the service would see.
	svc := strategysvc.New(p, strategysvc.Config{})
	defer svc.Close()
	snap := svc.Snapshot()
	fmt.Printf("plan snapshot: version %d, epoch %d, members %d\n",
		snap.Version, snap.Epoch, snap.ActiveCount())
	clients := append([]graph.NodeID(nil), topo.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, u := range clients {
		st := snap.Get(u)
		fmt.Println(st)
		if *verify {
			checkOptimal(p, u, st)
		}
	}
}

// runStress drives the readers × churn workload and prints the measured
// numbers. It builds a pure-tree topology with tree-metric routing — the
// configuration the service's applier is designed around (churn repaired by
// the O(depth) tree-aggregate, not a full scan) and the same one the
// BenchmarkStrategyService grid measures, so the two sets of numbers are
// comparable. Chorded scan-mode topologies still work through the service
// (covered by its tests); they just bottleneck on replanning, which is a
// planner property, not a service one.
func runStress(routers int, seed uint64, beta float64, allowDirect bool, readers, churnRate int, d time.Duration) {
	net := topology.MustGenerateTree(topology.DefaultTreeConfig(routers), rng.New(seed))
	tree := mtree.MustBuild(net)
	p := core.NewPlanner(tree, route.NewTreeTables(tree))
	p.Timeout = core.ProportionalTimeout(beta)
	p.AllowDirectSource = allowDirect
	fmt.Printf("topology: %d routers (pure tree), %d clients, tree depth max %d\n",
		routers, len(tree.Clients), maxDepth(tree))

	svc := strategysvc.New(p, strategysvc.Config{})
	defer svc.Close()
	fmt.Printf("stress: %d readers, %d churn ops/sec, %v\n", readers, churnRate, d)
	res := strategysvc.Stress(svc, tree.Clients, readers, churnRate, d)
	qps := float64(res.Queries) / res.Elapsed.Seconds()
	fmt.Printf("queries: %d in %.2fs  (%.0f queries/sec)\n",
		res.Queries, res.Elapsed.Seconds(), qps)
	fmt.Printf("latency: p50 %.0fns  p99 %.0fns\n", res.P50, res.P99)
	st := res.Stats
	fmt.Printf("versions published: %d  (final version %d, epoch %d)\n",
		st.Published, res.Version, res.Epoch)
	fmt.Printf("churn: %d applied, %d rejected in %d batches  (mean batch %.2f, max %d)\n",
		st.Applied, st.Rejected, st.Batches, st.MeanBatch(), st.MaxBatch)
}

func detail(p *core.Planner, tree *mtree.Tree, u graph.NodeID, verify bool) {
	fmt.Printf("client %d: depth DS_u=%d, path to root %v\n",
		u, tree.Depth[u], tree.PathToRoot(u))
	cands := p.Candidates(u)
	fmt.Printf("candidate clients (%d competitive classes):\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  %2d. peer %d  meet router %d  DS=%d  rtt=%.2fms  t0=%.2fms\n",
			i+1, c.Peer, c.Meet, c.DS, c.RTT, c.Timeout)
	}
	sg := p.BuildStrategyGraph(u)
	d := sg.Digraph()
	fmt.Printf("strategy graph: %d nodes, %d arcs (u=0, S=%d)\n",
		d.NumNodes(), d.NumArcs(), d.NumNodes()-1)
	for v := graph.NodeID(0); int(v) < d.NumNodes(); v++ {
		for _, a := range d.Out(v) {
			fmt.Printf("  %d → %d  w=%.4f\n", v, a.To, a.W)
		}
	}
	st := sg.Algorithm1()
	fmt.Printf("Algorithm 1 optimum: %s\n", st)
	if verify {
		checkOptimal(p, u, st)
	}
}

func checkOptimal(p *core.Planner, u graph.NodeID, st *core.Strategy) {
	sg := p.BuildStrategyGraph(u)
	if len(sg.Candidates) > 18 {
		fmt.Printf("  (skip brute force: %d candidates)\n", len(sg.Candidates))
		return
	}
	best, _ := core.BruteForceMeaningful(sg.Candidates, sg.ClientDepth, sg.SourceRTT)
	if math.Abs(best-st.ExpectedDelay) > 1e-9 {
		fail(fmt.Errorf("client %d: Algorithm 1 %.6f != brute force %.6f",
			u, st.ExpectedDelay, best))
	}
	fmt.Printf("  brute force agrees: %.4f ms\n", best)
}

func maxDepth(t *mtree.Tree) int32 {
	var m int32
	for _, d := range t.Depth {
		if d > m {
			m = d
		}
	}
	return m
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "strategy: %v\n", err)
	os.Exit(1)
}
