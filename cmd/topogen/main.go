// Command topogen generates and exports simulation topologies for
// inspection: Graphviz DOT (multicast tree highlighted) or JSON (full
// attribute dump usable by external tooling).
//
// Usage:
//
//	topogen -routers 50 -seed 7 -format dot | dot -Tsvg > topo.svg
//	topogen -routers 200 -tree spt -format json > topo.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
	"rmcast/internal/viz"
)

func main() {
	var (
		routers = flag.Int("routers", 50, "backbone router count")
		seed    = flag.Uint64("seed", 1, "generation seed")
		loss    = flag.Float64("loss", 0.05, "per-link loss probability")
		model   = flag.String("model", "random", "backbone model: random|waxman")
		tree    = flag.String("tree", "random", "multicast tree: random|spt")
		format  = flag.String("format", "dot", "output: dot|json|svg")
		overlay = flag.Bool("strategies", false, "svg only: overlay each client's first-choice recovery peer")
	)
	flag.Parse()

	cfg := topology.DefaultConfig(*routers)
	cfg.LossProb = *loss
	switch *model {
	case "random":
	case "waxman":
		cfg.Model = topology.Waxman
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}
	switch *tree {
	case "random":
	case "spt":
		cfg.Tree = topology.ShortestPathTree
	default:
		fail(fmt.Errorf("unknown tree kind %q", *tree))
	}
	net, err := topology.Generate(cfg, rng.New(*seed))
	if err != nil {
		fail(err)
	}

	switch *format {
	case "dot":
		err = writeDOT(net)
	case "json":
		err = writeJSON(net)
	case "svg":
		err = writeSVG(net, *overlay)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
}

func writeDOT(net *topology.Network) error {
	inTree := make(map[graph.EdgeID]bool, len(net.TreeEdges))
	for _, id := range net.TreeEdges {
		inTree[id] = true
	}
	w := os.Stdout
	fmt.Fprintln(w, "graph rmcast {")
	fmt.Fprintln(w, "  layout=neato; overlap=false; splines=true;")
	for v := 0; v < net.NumNodes(); v++ {
		var attrs string
		switch net.Kind[v] {
		case topology.Source:
			attrs = `shape=doublecircle,style=filled,fillcolor="#d62728",label="S"`
		case topology.Client:
			attrs = `shape=circle,style=filled,fillcolor="#1f77b4",label="C"`
		case topology.Ghost:
			attrs = `shape=point,label=""`
		default:
			attrs = `shape=circle,label="",width=0.12`
		}
		fmt.Fprintf(w, "  n%d [%s];\n", v, attrs)
	}
	for id, e := range net.G.Edges() {
		style := `color="#cccccc"`
		if inTree[graph.EdgeID(id)] {
			style = `color="#2ca02c",penwidth=2`
		}
		fmt.Fprintf(w, "  n%d -- n%d [%s,label=\"%.1f\",fontsize=7];\n",
			e.A, e.B, style, net.Delay[id])
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// jsonTopo is the stable export schema.
type jsonTopo struct {
	Routers int        `json:"routers"`
	Source  int32      `json:"source"`
	Clients []int32    `json:"clients"`
	Nodes   []string   `json:"nodes"`
	Links   []jsonLink `json:"links"`
	Tree    []int32    `json:"treeLinks"`
}

type jsonLink struct {
	A       int32   `json:"a"`
	B       int32   `json:"b"`
	DelayMs float64 `json:"delayMs"`
	Loss    float64 `json:"loss"`
}

func writeJSON(net *topology.Network) error {
	out := jsonTopo{Source: int32(net.Source)}
	for v := 0; v < net.NumNodes(); v++ {
		out.Nodes = append(out.Nodes, net.Kind[v].String())
		if net.Kind[v] == topology.Router {
			out.Routers++
		}
	}
	for _, c := range net.Clients {
		out.Clients = append(out.Clients, int32(c))
	}
	for id, e := range net.G.Edges() {
		out.Links = append(out.Links, jsonLink{
			A: int32(e.A), B: int32(e.B),
			DelayMs: net.Delay[id], Loss: net.Loss[id],
		})
	}
	for _, id := range net.TreeEdges {
		out.Tree = append(out.Tree, int32(id))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeSVG(net *topology.Network, overlay bool) error {
	var strategies map[graph.NodeID]*core.Strategy
	if overlay {
		tree, err := mtree.Build(net)
		if err != nil {
			return err
		}
		strategies = core.NewPlanner(tree, route.Build(net)).All()
	}
	c, err := viz.Topology(net, strategies, 1000, 700)
	if err != nil {
		return err
	}
	_, err = c.WriteTo(os.Stdout)
	return err
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
	os.Exit(1)
}
